package trace

import (
	"fmt"
	"time"

	"repro/internal/packet"
)

// span is the common active-interval logic shared by all injectors.
type span struct {
	Start time.Duration
	End   time.Duration
}

// overlap returns the fraction range [f0,f1) of window w that the span
// covers, and whether it covers anything.
func (s span) overlap(w WindowCtx) (float64, float64, bool) {
	lo, hi := s.Start, s.End
	if hi <= w.Start || lo >= w.Start+w.Width {
		return 0, 0, false
	}
	if lo < w.Start {
		lo = w.Start
	}
	if hi > w.Start+w.Width {
		hi = w.Start + w.Width
	}
	f0 := float64(lo-w.Start) / float64(w.Width)
	f1 := float64(hi-w.Start) / float64(w.Width)
	return f0, f1, true
}

// spread returns evenly spaced fractions for n events between f0 and f1.
func spread(f0, f1 float64, n, k int) float64 {
	if n <= 1 {
		return f0
	}
	return f0 + (f1-f0)*float64(k)/float64(n)
}

// attackerIP returns a deterministic 10.0.0.0/8 source address for actor i.
func attackerIP(i int) uint32 {
	return packet.IPv4Addr(10, byte(i>>16), byte(i>>8), byte(i))
}

// SYNFlood sends bare SYNs to the victim from many spoofed sources. It is
// the positive signal for the "newly opened TCP connections" and "TCP SYN
// flood" queries.
type SYNFlood struct {
	Victim           uint32
	Sources          int
	PacketsPerWindow int
	Active           span
}

// NewSYNFlood builds a flood active during [start, end).
func NewSYNFlood(victim uint32, sources, perWindow int, start, end time.Duration) *SYNFlood {
	return &SYNFlood{Victim: victim, Sources: sources, PacketsPerWindow: perWindow, Active: span{start, end}}
}

func (a *SYNFlood) Truth() GroundTruth {
	return GroundTruth{Kind: KindSYNFlood, Victim: a.Victim, Start: a.Active.Start, End: a.Active.End}
}

func (a *SYNFlood) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.PacketsPerWindow) * (f1 - f0))
	for k := 0; k < n; k++ {
		src := attackerIP(w.Rand.Intn(a.Sources))
		emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: a.Victim, Proto: 6,
			SrcPort: ephemeralPort(w.Rand), DstPort: 80, TCPFlags: flagSYN, Pad: 60,
		})})
	}
}

// SSHBruteForce has many sources attempt logins against the victim's SSH
// port with characteristically similar-sized packets.
type SSHBruteForce struct {
	Victim           uint32
	Sources          int
	PacketsPerWindow int
	PacketLen        int
	Active           span
}

func NewSSHBruteForce(victim uint32, sources, perWindow int, start, end time.Duration) *SSHBruteForce {
	return &SSHBruteForce{Victim: victim, Sources: sources, PacketsPerWindow: perWindow, PacketLen: 124, Active: span{start, end}}
}

func (a *SSHBruteForce) Truth() GroundTruth {
	return GroundTruth{Kind: KindSSHBrute, Victim: a.Victim, Start: a.Active.Start, End: a.Active.End}
}

func (a *SSHBruteForce) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.PacketsPerWindow) * (f1 - f0))
	for k := 0; k < n; k++ {
		src := attackerIP(1_000_000 + w.Rand.Intn(a.Sources))
		emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: a.Victim, Proto: 6,
			SrcPort: ephemeralPort(w.Rand), DstPort: 22, TCPFlags: flagACK | flagPSH,
			Pad: a.PacketLen,
		})})
	}
}

// Superspreader is a single source contacting many distinct destinations.
type Superspreader struct {
	Source           uint32
	Fanout           int
	PacketsPerWindow int
	Active           span
}

func NewSuperspreader(source uint32, fanout, perWindow int, start, end time.Duration) *Superspreader {
	return &Superspreader{Source: source, Fanout: fanout, PacketsPerWindow: perWindow, Active: span{start, end}}
}

func (a *Superspreader) Truth() GroundTruth {
	return GroundTruth{Kind: KindSuperspreader, Victim: a.Source, Attacker: a.Source, Start: a.Active.Start, End: a.Active.End}
}

func (a *Superspreader) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.PacketsPerWindow) * (f1 - f0))
	for k := 0; k < n; k++ {
		dst := attackerIP(2_000_000 + k%a.Fanout)
		emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: a.Source, DstIP: dst, Proto: 6,
			SrcPort: ephemeralPort(w.Rand), DstPort: 80, TCPFlags: flagSYN, Pad: 60,
		})})
	}
}

// PortScan probes many destination ports on one target from one scanner.
type PortScan struct {
	Scanner          uint32
	Target           uint32
	Ports            int
	PacketsPerWindow int
	Active           span
}

func NewPortScan(scanner, target uint32, ports, perWindow int, start, end time.Duration) *PortScan {
	return &PortScan{Scanner: scanner, Target: target, Ports: ports, PacketsPerWindow: perWindow, Active: span{start, end}}
}

func (a *PortScan) Truth() GroundTruth {
	return GroundTruth{Kind: KindPortScan, Victim: a.Target, Attacker: a.Scanner, Start: a.Active.Start, End: a.Active.End}
}

func (a *PortScan) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.PacketsPerWindow) * (f1 - f0))
	for k := 0; k < n; k++ {
		emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: a.Scanner, DstIP: a.Target, Proto: 6,
			SrcPort: ephemeralPort(w.Rand), DstPort: uint16(1 + k%a.Ports), TCPFlags: flagSYN, Pad: 60,
		})})
	}
}

// DDoS floods the victim with packets from many distinct sources.
type DDoS struct {
	Victim           uint32
	Sources          int
	PacketsPerWindow int
	Active           span
}

func NewDDoS(victim uint32, sources, perWindow int, start, end time.Duration) *DDoS {
	return &DDoS{Victim: victim, Sources: sources, PacketsPerWindow: perWindow, Active: span{start, end}}
}

func (a *DDoS) Truth() GroundTruth {
	return GroundTruth{Kind: KindDDoS, Victim: a.Victim, Start: a.Active.Start, End: a.Active.End}
}

func (a *DDoS) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.PacketsPerWindow) * (f1 - f0))
	for k := 0; k < n; k++ {
		src := attackerIP(3_000_000 + k%a.Sources)
		emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: a.Victim, Proto: 17,
			SrcPort: ephemeralPort(w.Rand), DstPort: 80, Pad: 400,
		})})
	}
}

// TCPIncomplete opens connections that never complete: SYNs with no
// matching FINs, from rotating spoofed sources.
type TCPIncomplete struct {
	Victim           uint32
	Sources          int
	PacketsPerWindow int
	Active           span
}

func NewTCPIncomplete(victim uint32, sources, perWindow int, start, end time.Duration) *TCPIncomplete {
	return &TCPIncomplete{Victim: victim, Sources: sources, PacketsPerWindow: perWindow, Active: span{start, end}}
}

func (a *TCPIncomplete) Truth() GroundTruth {
	return GroundTruth{Kind: KindIncomplete, Victim: a.Victim, Start: a.Active.Start, End: a.Active.End}
}

func (a *TCPIncomplete) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.PacketsPerWindow) * (f1 - f0))
	for k := 0; k < n; k++ {
		src := attackerIP(4_000_000 + k%a.Sources)
		emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildFrame(nil, &packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: a.Victim, Proto: 6,
			SrcPort: ephemeralPort(w.Rand), DstPort: 443, TCPFlags: flagSYN, Pad: 60,
		})})
	}
}

// Slowloris opens many connections to the victim, each transferring almost
// nothing, so connections-per-byte is anomalously high.
type Slowloris struct {
	Victim         uint32
	ConnsPerWindow int
	Active         span
}

func NewSlowloris(victim uint32, connsPerWindow int, start, end time.Duration) *Slowloris {
	return &Slowloris{Victim: victim, ConnsPerWindow: connsPerWindow, Active: span{start, end}}
}

func (a *Slowloris) Truth() GroundTruth {
	return GroundTruth{Kind: KindSlowloris, Victim: a.Victim, Start: a.Active.Start, End: a.Active.End}
}

func (a *Slowloris) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.ConnsPerWindow) * (f1 - f0))
	for k := 0; k < n; k++ {
		src := attackerIP(5_000_000 + k%64)
		sport := uint16(20000 + k%40000)
		frac := spread(f0, f1, n, k)
		spec := packet.FrameSpec{
			SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: a.Victim, Proto: 6,
			SrcPort: sport, DstPort: 80, TCPFlags: flagSYN, Pad: 60,
		}
		emit(Record{w.rel(frac), packet.BuildFrame(nil, &spec)})
		// One tiny header fragment keeps the connection alive.
		spec.TCPFlags = flagACK | flagPSH
		spec.Payload = []byte("X-a: b\r\n")
		spec.Pad = 0
		emit(Record{w.rel(frac + 0.0005), packet.BuildFrame(nil, &spec)})
	}
}

// DNSTunnel exfiltrates data via many unique subdomain lookups beneath one
// registered domain.
type DNSTunnel struct {
	Client           uint32
	Resolver         uint32
	Domain           string
	QueriesPerWindow int
	Active           span
}

func NewDNSTunnel(client, resolver uint32, domain string, perWindow int, start, end time.Duration) *DNSTunnel {
	return &DNSTunnel{Client: client, Resolver: resolver, Domain: domain, QueriesPerWindow: perWindow, Active: span{start, end}}
}

func (a *DNSTunnel) Truth() GroundTruth {
	return GroundTruth{Kind: KindDNSTunnel, Victim: a.Client, Domain: a.Domain, Start: a.Active.Start, End: a.Active.End}
}

// chunkBase recomputes how many queries the tunnel emitted in every window
// before w from the window geometry alone. Deriving the label counter this
// way (instead of a field that persists across EmitWindow calls) keeps
// labels unique across windows while letting windows be generated in any
// order, concurrently, or more than once.
func (a *DNSTunnel) chunkBase(w WindowCtx) int {
	base := 0
	for j := 0; j < w.Index; j++ {
		prev := WindowCtx{Index: j, Start: time.Duration(j) * w.Width, Width: w.Width}
		if f0, f1, ok := a.Active.overlap(prev); ok {
			base += int(float64(a.QueriesPerWindow) * (f1 - f0))
		}
	}
	return base
}

func (a *DNSTunnel) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.QueriesPerWindow) * (f1 - f0))
	counter := a.chunkBase(w)
	for k := 0; k < n; k++ {
		// Unique chunk label per query; windows never repeat labels because
		// the counter continues from the windows before this one.
		counter++
		qname := fmt.Sprintf("x%08x.%s", counter, a.Domain)
		frac := spread(f0, f1, n, k)
		spec := packet.FrameSpec{SrcMAC: macA, DstMAC: macB, SrcIP: a.Client, DstIP: a.Resolver, SrcPort: ephemeralPort(w.Rand)}
		emit(Record{w.rel(frac), packet.BuildDNSQuery(nil, &spec, uint16(counter), qname, packet.DNSTypeTXT)})
		ans := []packet.DNSRecord{{Name: qname, Type: packet.DNSTypeTXT, Class: 1, TTL: 1, Data: []byte("ok")}}
		rspec := packet.FrameSpec{SrcMAC: macB, DstMAC: macA, SrcIP: a.Resolver, DstIP: a.Client, DstPort: spec.SrcPort}
		emit(Record{w.rel(frac + 0.0003), packet.BuildDNSResponse(nil, &rspec, uint16(counter), qname, packet.DNSTypeTXT, ans)})
	}
}

// Zorro reproduces the IoT-malware case study (Figure 9): a brute-force
// stream of similar-sized telnet packets to the victim, followed — once the
// attacker "gains shell access" at ShellAt — by a handful of packets whose
// payload contains the keyword "zorro".
type Zorro struct {
	Attacker         uint32
	Victim           uint32
	PacketsPerWindow int
	PacketLen        int
	Active           span
	ShellAt          time.Duration
	ShellPackets     int
}

func NewZorro(attacker, victim uint32, perWindow int, start, end, shellAt time.Duration) *Zorro {
	return &Zorro{Attacker: attacker, Victim: victim, PacketsPerWindow: perWindow,
		PacketLen: 90, Active: span{start, end}, ShellAt: shellAt, ShellPackets: 5}
}

func (a *Zorro) Truth() GroundTruth {
	return GroundTruth{Kind: KindZorro, Victim: a.Victim, Attacker: a.Attacker, Start: a.Active.Start, End: a.Active.End}
}

func (a *Zorro) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if ok {
		n := int(float64(a.PacketsPerWindow) * (f1 - f0))
		for k := 0; k < n; k++ {
			emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildFrame(nil, &packet.FrameSpec{
				SrcMAC: macA, DstMAC: macB, SrcIP: a.Attacker, DstIP: a.Victim, Proto: 6,
				SrcPort: 31337, DstPort: 23, TCPFlags: flagACK | flagPSH,
				Payload: []byte("admin\r\n"), Pad: a.PacketLen,
			})})
		}
	}
	// Shell phase: the "zorro" command packets. ShellAt falls inside exactly
	// one window, so the containment check alone bounds the phase to
	// ShellPackets total — no cross-window emission count needed.
	if a.ShellAt >= w.Start && a.ShellAt < w.Start+w.Width {
		base := float64(a.ShellAt-w.Start) / float64(w.Width)
		for k := 0; k < a.ShellPackets; k++ {
			emit(Record{w.rel(base + float64(k)*0.001), packet.BuildFrame(nil, &packet.FrameSpec{
				SrcMAC: macA, DstMAC: macB, SrcIP: a.Attacker, DstIP: a.Victim, Proto: 6,
				SrcPort: 31337, DstPort: 23, TCPFlags: flagACK | flagPSH,
				Payload: []byte("sh -c zorro --spread\r\n"),
			})})
		}
	}
}

// DNSReflection aims many large DNS responses from distinct resolvers at
// the victim.
type DNSReflection struct {
	Victim           uint32
	Resolvers        int
	PacketsPerWindow int
	Active           span
}

func NewDNSReflection(victim uint32, resolvers, perWindow int, start, end time.Duration) *DNSReflection {
	return &DNSReflection{Victim: victim, Resolvers: resolvers, PacketsPerWindow: perWindow, Active: span{start, end}}
}

func (a *DNSReflection) Truth() GroundTruth {
	return GroundTruth{Kind: KindDNSReflection, Victim: a.Victim, Start: a.Active.Start, End: a.Active.End}
}

func (a *DNSReflection) EmitWindow(w WindowCtx, emit func(Record)) {
	f0, f1, ok := a.Active.overlap(w)
	if !ok {
		return
	}
	n := int(float64(a.PacketsPerWindow) * (f1 - f0))
	big := make([]byte, 220) // amplified TXT answer
	for k := 0; k < n; k++ {
		resolver := attackerIP(6_000_000 + k%a.Resolvers)
		ans := []packet.DNSRecord{{Name: "any.example", Type: packet.DNSTypeTXT, Class: 1, TTL: 60, Data: big}}
		rspec := packet.FrameSpec{SrcMAC: macB, DstMAC: macA, SrcIP: resolver, DstIP: a.Victim, DstPort: ephemeralPort(w.Rand)}
		emit(Record{w.rel(spread(f0, f1, n, k)), packet.BuildDNSResponse(nil, &rspec, uint16(k), "any.example", packet.DNSTypeANY, ans)})
	}
}
