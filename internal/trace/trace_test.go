package trace

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"repro/internal/fields"
	"repro/internal/packet"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PacketsPerWindow = 4000
	cfg.Windows = 3
	cfg.Hosts = 500
	return cfg
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := smallConfig()
	g1, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	StandardAttackSuite(g1)
	StandardAttackSuite(g2)
	for i := 0; i < cfg.Windows; i++ {
		w1, w2 := g1.WindowRecords(i), g2.WindowRecords(i)
		if len(w1.Records) != len(w2.Records) {
			t.Fatalf("window %d: %d vs %d records", i, len(w1.Records), len(w2.Records))
		}
		for j := range w1.Records {
			if w1.Records[j].TS != w2.Records[j].TS || !bytes.Equal(w1.Records[j].Data, w2.Records[j].Data) {
				t.Fatalf("window %d record %d differs", i, j)
			}
		}
	}
}

// TestParallelGenerationDeterministic is the purity contract behind
// GenerateWindows: the same seed must yield byte-identical pcap output at
// any worker count, and regenerating a window out of order (or twice) must
// reproduce it exactly.
func TestParallelGenerationDeterministic(t *testing.T) {
	cfg := smallConfig()
	pcapAt := func(workers int) []byte {
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		StandardAttackSuite(g)
		var buf bytes.Buffer
		if err := WritePcapParallel(&buf, g, workers); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := pcapAt(1)
	for _, workers := range []int{2, 4, 8} {
		if got := pcapAt(workers); !bytes.Equal(got, want) {
			t.Errorf("pcap bytes at %d workers differ from sequential (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}

	// Out-of-order and repeated regeneration must match the in-order pass.
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	StandardAttackSuite(g)
	last := g.WindowRecords(cfg.Windows - 1)
	first := g.WindowRecords(0)
	again := g.WindowRecords(cfg.Windows - 1)
	if len(last.Records) != len(again.Records) {
		t.Fatalf("regenerated window: %d vs %d records", len(last.Records), len(again.Records))
	}
	for j := range last.Records {
		if last.Records[j].TS != again.Records[j].TS || !bytes.Equal(last.Records[j].Data, again.Records[j].Data) {
			t.Fatalf("regenerated window record %d differs", j)
		}
	}
	if len(first.Records) == 0 {
		t.Fatal("first window empty")
	}
}

func TestGeneratorWindowsSortedAndInRange(t *testing.T) {
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	StandardAttackSuite(g)
	for i := 0; i < g.Windows(); i++ {
		w := g.WindowRecords(i)
		if !sort.SliceIsSorted(w.Records, func(a, b int) bool { return w.Records[a].TS < w.Records[b].TS }) {
			t.Errorf("window %d not sorted", i)
		}
		lo := w.Start
		hi := w.Start + g.Config().Window
		for _, r := range w.Records {
			if r.TS < lo || r.TS >= hi {
				t.Fatalf("window %d record at %v outside [%v,%v)", i, r.TS, lo, hi)
			}
		}
		if len(w.Records) < g.Config().PacketsPerWindow {
			t.Errorf("window %d has %d records, below budget %d", i, len(w.Records), g.Config().PacketsPerWindow)
		}
	}
}

func TestGeneratorPacketsParse(t *testing.T) {
	g, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	StandardAttackSuite(g)
	p := packet.NewParser(packet.ParserOptions{DecodeDNS: true})
	var pkt packet.Packet
	w := g.WindowRecords(0)
	dns, tcp, udp := 0, 0, 0
	for _, r := range w.Records {
		if err := p.Parse(r.Data, &pkt); err != nil {
			t.Fatalf("generated packet failed to parse: %v", err)
		}
		switch {
		case pkt.Has(packet.LayerDNS):
			dns++
		case pkt.Has(packet.LayerTCP):
			tcp++
		case pkt.Has(packet.LayerUDP):
			udp++
		}
	}
	if tcp == 0 || udp == 0 || dns == 0 {
		t.Errorf("traffic mix missing classes: tcp=%d udp=%d dns=%d", tcp, udp, dns)
	}
	if tcp < udp {
		t.Errorf("expected TCP-dominated mix, got tcp=%d udp=%d", tcp, udp)
	}
}

// The headline property the generator must reproduce: per-destination packet
// counts are heavy-tailed and the attack victims stand out.
func TestHeavyTailAndNeedles(t *testing.T) {
	cfg := smallConfig()
	cfg.PacketsPerWindow = 8000
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.AddAttack(NewSYNFlood(StandardVictim, 64, 400, 0, g.Duration()))
	w := g.WindowRecords(1)

	p := packet.NewParser(packet.ParserOptions{})
	var pkt packet.Packet
	synPerDst := map[uint32]int{}
	for _, r := range w.Records {
		if p.Parse(r.Data, &pkt) != nil || !pkt.Has(packet.LayerTCP) {
			continue
		}
		if pkt.TCP.Flags == fields.FlagSYN {
			synPerDst[pkt.IPv4.Dst]++
		}
	}
	max, maxDst, second := 0, uint32(0), 0
	for d, c := range synPerDst {
		if c > max {
			max, second, maxDst = c, max, d
		} else if c > second {
			second = c
		}
	}
	if maxDst != StandardVictim {
		t.Errorf("top SYN destination = %s, want victim %s",
			packet.IPv4String(maxDst), packet.IPv4String(StandardVictim))
	}
	// The needle must clearly lead even the most popular background host
	// (which is itself heavy-tailed, so the gap is 2x not 100x).
	if max < 2*second {
		t.Errorf("victim got %d SYNs vs runner-up %d; needle not prominent", max, second)
	}
	// Heavy tail: the median destination sees a tiny trickle.
	counts := make([]int, 0, len(synPerDst))
	for _, c := range synPerDst {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	if med := counts[len(counts)/2]; med > 5 {
		t.Errorf("median per-destination SYN count = %d; tail not heavy", med)
	}
	// Heavy tail: far more destinations than "hot" destinations.
	hot := 0
	for _, c := range synPerDst {
		if c > 5 {
			hot++
		}
	}
	if hot > len(synPerDst)/4 {
		t.Errorf("background SYNs too concentrated: %d hot of %d", hot, len(synPerDst))
	}
}

func TestZorroPhases(t *testing.T) {
	cfg := smallConfig()
	cfg.Windows = 8
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shellAt := 16 * time.Second
	g.AddAttack(NewZorro(ip4(10, 66, 0, 1), StandardVictim, 300, 9*time.Second, g.Duration(), shellAt))

	p := packet.NewParser(packet.ParserOptions{})
	var pkt packet.Packet
	zorro := 0
	telnetByWindow := make([]int, cfg.Windows)
	for i := 0; i < cfg.Windows; i++ {
		for _, r := range g.WindowRecords(i).Records {
			if p.Parse(r.Data, &pkt) != nil || !pkt.Has(packet.LayerTCP) {
				continue
			}
			if pkt.TCP.DstPort == 23 && pkt.IPv4.Dst == StandardVictim {
				telnetByWindow[i]++
				if bytes.Contains(pkt.Payload, []byte("zorro")) {
					zorro++
					if r.TS < shellAt {
						t.Errorf("zorro payload before shell time at %v", r.TS)
					}
				}
			}
		}
	}
	if zorro != 5 {
		t.Errorf("zorro packets = %d, want 5", zorro)
	}
	if telnetByWindow[0] != 0 || telnetByWindow[2] != 0 {
		t.Errorf("attack traffic before start: %v", telnetByWindow)
	}
	if telnetByWindow[4] == 0 || telnetByWindow[6] == 0 {
		t.Errorf("attack traffic missing during active phase: %v", telnetByWindow)
	}
}

func TestDNSTunnelUniqueNames(t *testing.T) {
	cfg := smallConfig()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tun := NewDNSTunnel(ip4(99, 9, 0, 66), ip4(8, 8, 8, 8), "exfil.bad.com", 100, 0, g.Duration())
	g.AddAttack(tun)

	p := packet.NewParser(packet.ParserOptions{DecodeDNS: true})
	var pkt packet.Packet
	names := map[string]bool{}
	queries := 0
	for i := 0; i < cfg.Windows; i++ {
		for _, r := range g.WindowRecords(i).Records {
			if p.Parse(r.Data, &pkt) != nil || !pkt.Has(packet.LayerDNS) || pkt.DNS.Response {
				continue
			}
			name := pkt.DNS.Questions[0].Name
			if packet.DNSNameLevel(name, 3) == "exfil.bad.com" && name != "exfil.bad.com" {
				queries++
				names[name] = true
			}
		}
	}
	if queries == 0 {
		t.Fatal("no tunnel queries generated")
	}
	if len(names) != queries {
		t.Errorf("tunnel labels repeat: %d unique of %d", len(names), queries)
	}
}

func TestSliceWindows(t *testing.T) {
	recs := []Record{
		{TS: 0},
		{TS: time.Second},
		{TS: 2*time.Second + 500*time.Millisecond},
		{TS: 5 * time.Second},
	}
	wins := Slice(recs, time.Second, 6*time.Second)
	if len(wins) != 6 {
		t.Fatalf("got %d windows", len(wins))
	}
	counts := []int{1, 1, 1, 0, 0, 1}
	for i, want := range counts {
		if len(wins[i].Records) != want {
			t.Errorf("window %d has %d records, want %d", i, len(wins[i].Records), want)
		}
	}
}

func TestPcapRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.PacketsPerWindow = 500
	cfg.Windows = 2
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, g); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for i := 0; i < cfg.Windows; i++ {
		want += len(g.WindowRecords(i).Records)
	}
	if len(recs) != want {
		t.Fatalf("round trip lost records: %d vs %d", len(recs), want)
	}
	// Pcap microsecond resolution may coarsen timestamps but order holds.
	if !sort.SliceIsSorted(recs, func(a, b int) bool { return recs[a].TS < recs[b].TS }) {
		t.Error("round-tripped records out of order")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Window: time.Second, Windows: 1, PacketsPerWindow: 0, Hosts: 100, ZipfS: 1.2},
		{Window: time.Second, Windows: 1, PacketsPerWindow: 10, Hosts: 2, ZipfS: 1.2},
		{Window: time.Second, Windows: 1, PacketsPerWindow: 10, Hosts: 100, ZipfS: 0.5},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func BenchmarkGenerateWindow(b *testing.B) {
	cfg := DefaultConfig()
	cfg.PacketsPerWindow = 20000
	g, err := NewGenerator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	StandardAttackSuite(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := g.WindowRecords(i % cfg.Windows)
		if len(w.Records) == 0 {
			b.Fatal("empty window")
		}
	}
}
