package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/packet"
)

// collect runs one attack over one window on a silent background and
// returns its parsed packets.
func collect(t *testing.T, a Attack) []packet.Packet {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PacketsPerWindow = 64 // minimal background
	cfg.Windows = 1
	cfg.Hosts = 64
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.AddAttack(a)
	parser := packet.NewParser(packet.ParserOptions{DecodeDNS: true})
	var out []packet.Packet
	for _, r := range g.WindowRecords(0).Records {
		var pkt packet.Packet
		if err := parser.Parse(r.Data, &pkt); err == nil {
			out = append(out, pkt)
		}
	}
	return out
}

func TestSYNFloodShape(t *testing.T) {
	victim := ip4(99, 1, 2, 3)
	pkts := collect(t, NewSYNFlood(victim, 16, 200, 0, 3*time.Second))
	syns := 0
	sources := map[uint32]bool{}
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerTCP) && p.IPv4.Dst == victim && p.TCP.Flags == flagSYN {
			syns++
			sources[p.IPv4.Src] = true
		}
	}
	if syns < 150 {
		t.Errorf("SYNs = %d, want ~200", syns)
	}
	if len(sources) < 10 {
		t.Errorf("sources = %d, want spread over ~16", len(sources))
	}
}

func TestPortScanShape(t *testing.T) {
	scanner := ip4(10, 9, 9, 9)
	target := ip4(99, 1, 1, 1)
	pkts := collect(t, NewPortScan(scanner, target, 100, 150, 0, 3*time.Second))
	ports := map[uint16]bool{}
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerTCP) && p.IPv4.Src == scanner && p.IPv4.Dst == target {
			ports[p.TCP.DstPort] = true
		}
	}
	if len(ports) < 90 {
		t.Errorf("distinct ports = %d, want ~100", len(ports))
	}
}

func TestSuperspreaderShape(t *testing.T) {
	src := ip4(99, 9, 9, 9)
	pkts := collect(t, NewSuperspreader(src, 120, 200, 0, 3*time.Second))
	dsts := map[uint32]bool{}
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerIPv4) && p.IPv4.Src == src {
			dsts[p.IPv4.Dst] = true
		}
	}
	if len(dsts) < 100 {
		t.Errorf("fanout = %d, want ~120", len(dsts))
	}
}

func TestDDoSShape(t *testing.T) {
	victim := ip4(99, 8, 8, 8)
	pkts := collect(t, NewDDoS(victim, 150, 300, 0, 3*time.Second))
	srcs := map[uint32]bool{}
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerIPv4) && p.IPv4.Dst == victim {
			srcs[p.IPv4.Src] = true
		}
	}
	if len(srcs) < 120 {
		t.Errorf("distinct sources = %d, want ~150", len(srcs))
	}
}

func TestSlowlorisShape(t *testing.T) {
	victim := ip4(99, 7, 7, 7)
	pkts := collect(t, NewSlowloris(victim, 100, 0, 3*time.Second))
	conns := map[uint64]bool{}
	var bytesTotal int
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerTCP) && p.IPv4.Dst == victim {
			conns[uint64(p.IPv4.Src)<<16|uint64(p.TCP.SrcPort)] = true
			bytesTotal += len(p.Data)
		}
	}
	if len(conns) < 80 {
		t.Errorf("connections = %d, want ~100", len(conns))
	}
	if avg := bytesTotal / len(conns); avg > 200 {
		t.Errorf("bytes per connection = %d; slowloris must be thin", avg)
	}
}

func TestSSHBruteShape(t *testing.T) {
	victim := ip4(99, 6, 6, 6)
	pkts := collect(t, NewSSHBruteForce(victim, 20, 120, 0, 3*time.Second))
	sizes := map[int]int{}
	n := 0
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerTCP) && p.IPv4.Dst == victim && p.TCP.DstPort == 22 {
			sizes[len(p.Data)]++
			n++
		}
	}
	if n < 100 {
		t.Fatalf("ssh packets = %d", n)
	}
	if len(sizes) != 1 {
		t.Errorf("ssh probe sizes = %v; must be uniform", sizes)
	}
}

func TestDNSReflectionShape(t *testing.T) {
	victim := ip4(99, 5, 5, 5)
	pkts := collect(t, NewDNSReflection(victim, 80, 160, 0, 3*time.Second))
	resolvers := map[uint32]bool{}
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerDNS) && p.IPv4.Dst == victim && p.DNS.Response {
			resolvers[p.IPv4.Src] = true
			if p.UDP.SrcPort != 53 {
				t.Error("reflection response not from port 53")
			}
		}
	}
	if len(resolvers) < 60 {
		t.Errorf("resolvers = %d, want ~80", len(resolvers))
	}
}

func TestTCPIncompleteShape(t *testing.T) {
	victim := ip4(99, 4, 4, 4)
	pkts := collect(t, NewTCPIncomplete(victim, 50, 150, 0, 3*time.Second))
	syn, fin := 0, 0
	for i := range pkts {
		p := &pkts[i]
		if p.Has(packet.LayerTCP) && p.IPv4.Dst == victim {
			if p.TCP.Flags == flagSYN {
				syn++
			}
			if p.TCP.Flags&flagFIN != 0 {
				fin++
			}
		}
	}
	if syn < 100 || fin != 0 {
		t.Errorf("syn=%d fin=%d; incomplete flows must never close", syn, fin)
	}
}

func TestAttackSpanClipping(t *testing.T) {
	victim := ip4(99, 3, 3, 3)
	cfg := DefaultConfig()
	cfg.PacketsPerWindow = 64
	cfg.Windows = 3
	cfg.Hosts = 64
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Active only during the second window.
	g.AddAttack(NewSYNFlood(victim, 8, 300, 3*time.Second, 6*time.Second))
	counts := make([]int, 3)
	parser := packet.NewParser(packet.ParserOptions{})
	var pkt packet.Packet
	for w := 0; w < 3; w++ {
		for _, r := range g.WindowRecords(w).Records {
			if parser.Parse(r.Data, &pkt) == nil && pkt.Has(packet.LayerIPv4) && pkt.IPv4.Dst == victim {
				counts[w]++
			}
		}
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Errorf("attack leaked outside its span: %v", counts)
	}
	if counts[1] < 200 {
		t.Errorf("attack underdelivered in its window: %v", counts)
	}
}

func TestZorroPayloadOnlyAfterShell(t *testing.T) {
	victim := ip4(99, 2, 2, 2)
	attacker := ip4(10, 1, 1, 1)
	cfg := DefaultConfig()
	cfg.PacketsPerWindow = 64
	cfg.Windows = 2
	cfg.Hosts = 64
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shell fires in window 0; regenerating window 0 twice must not
	// duplicate shell packets thanks to the emitted counter... but
	// WindowRecords is documented as regenerable, so fetch each window
	// once, in order.
	g.AddAttack(NewZorro(attacker, victim, 50, 0, 6*time.Second, time.Second))
	parser := packet.NewParser(packet.ParserOptions{})
	var pkt packet.Packet
	zorro := 0
	for w := 0; w < 2; w++ {
		for _, r := range g.WindowRecords(w).Records {
			if parser.Parse(r.Data, &pkt) == nil && bytes.Contains(pkt.Payload, []byte("zorro")) {
				zorro++
			}
		}
	}
	if zorro != 5 {
		t.Errorf("zorro keyword packets = %d, want 5", zorro)
	}
}
